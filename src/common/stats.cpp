#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace oosp {

void StatAccumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StatAccumulator::merge(const StatAccumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StatAccumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StatAccumulator::stddev() const noexcept { return std::sqrt(variance()); }

QuantileHistogram::QuantileHistogram(double min_value, double growth, std::size_t buckets)
    : min_value_(min_value), growth_(growth), counts_(buckets, 0) {
  OOSP_REQUIRE(min_value > 0.0, "histogram min_value must be positive");
  OOSP_REQUIRE(growth > 1.0, "histogram growth must exceed 1");
  OOSP_REQUIRE(buckets >= 2, "histogram needs at least two buckets");
}

std::size_t QuantileHistogram::bucket_for(double x) const noexcept {
  // bucket i covers [min_value * growth^i, min_value * growth^(i+1))
  const double r = std::log(x / min_value_) / std::log(growth_);
  const auto i = static_cast<std::ptrdiff_t>(std::floor(r));
  if (i < 0) return 0;
  return std::min(static_cast<std::size_t>(i), counts_.size() - 1);
}

double QuantileHistogram::bucket_lo(std::size_t i) const noexcept {
  return min_value_ * std::pow(growth_, static_cast<double>(i));
}

double QuantileHistogram::bucket_hi(std::size_t i) const noexcept {
  return min_value_ * std::pow(growth_, static_cast<double>(i + 1));
}

void QuantileHistogram::add(double x) noexcept {
  ++total_;
  max_seen_ = std::max(max_seen_, x);
  if (x < min_value_) {
    ++underflow_;
    return;
  }
  ++counts_[bucket_for(x)];
}

void QuantileHistogram::merge(const QuantileHistogram& other) {
  OOSP_REQUIRE(counts_.size() == other.counts_.size() && min_value_ == other.min_value_ &&
                   growth_ == other.growth_,
               "histogram shapes differ");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void QuantileHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = underflow_ = 0;
  max_seen_ = 0.0;
}

double QuantileHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (rank <= cum) return 0.0;  // inside the underflow mass: below min_value
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (rank <= next && counts_[i] > 0) {
      const double frac = (rank - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum = next;
  }
  return max_seen_;
}

}  // namespace oosp
