#include "common/interner.hpp"

#include "common/contracts.hpp"

namespace oosp {

Interner::Id Interner::intern(std::string_view name) {
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  OOSP_REQUIRE(names_.size() < kInvalid, "interner capacity exhausted");
  names_.emplace_back(name);
  const Id id = static_cast<Id>(names_.size() - 1);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

Interner::Id Interner::lookup(std::string_view name) const noexcept {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalid : it->second;
}

const std::string& Interner::name(Id id) const {
  OOSP_REQUIRE(id < names_.size(), "unknown intern id");
  return names_[id];
}

}  // namespace oosp
