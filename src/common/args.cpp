#include "common/args.hpp"

#include <algorithm>
#include <charconv>
#include <iostream>
#include <stdexcept>

#include "common/contracts.hpp"

namespace oosp {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

namespace {
[[noreturn]] void bad(const std::string& msg) { throw std::invalid_argument(msg); }
}  // namespace

void ArgParser::add_string(std::string name, std::string default_value, std::string help) {
  options_.push_back(Option{std::move(name), Kind::kString, std::move(help),
                            std::move(default_value)});
}

void ArgParser::add_int(std::string name, std::int64_t default_value, std::string help) {
  options_.push_back(
      Option{std::move(name), Kind::kInt, std::move(help), std::to_string(default_value)});
}

void ArgParser::add_double(std::string name, double default_value, std::string help) {
  options_.push_back(Option{std::move(name), Kind::kDouble, std::move(help),
                            std::to_string(default_value)});
}

void ArgParser::add_flag(std::string name, std::string help) {
  options_.push_back(Option{std::move(name), Kind::kFlag, std::move(help), "0"});
}

ArgParser::Option& ArgParser::find(const std::string& name, Kind kind) {
  for (Option& o : options_)
    if (o.name == name) {
      OOSP_REQUIRE(o.kind == kind, "option accessed with wrong type: " + name);
      return o;
    }
  bad("unknown option: --" + name);
}

const ArgParser::Option& ArgParser::find(const std::string& name, Kind kind) const {
  return const_cast<ArgParser*>(this)->find(name, kind);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) bad("expected an option, got '" + arg + "'");
    arg = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    Option* opt = nullptr;
    for (Option& o : options_)
      if (o.name == arg) opt = &o;
    if (opt == nullptr) bad("unknown option: --" + arg);

    if (opt->kind == Kind::kFlag) {
      if (inline_value) bad("flag --" + arg + " does not take a value");
      opt->value = "1";
      continue;
    }
    std::string value;
    if (inline_value) {
      value = *inline_value;
    } else {
      if (i + 1 >= argc) bad("option --" + arg + " needs a value");
      value = argv[++i];
    }
    // Validate numeric forms now so errors carry the option name.
    if (opt->kind == Kind::kInt) {
      std::int64_t v = 0;
      const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc{} || p != value.data() + value.size())
        bad("option --" + arg + " expects an integer, got '" + value + "'");
    } else if (opt->kind == Kind::kDouble) {
      try {
        std::size_t used = 0;
        (void)std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        bad("option --" + arg + " expects a number, got '" + value + "'");
      }
    }
    opt->value = std::move(value);
  }
  return true;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const Option& o = find(name, Kind::kInt);
  std::int64_t v = 0;
  const auto res = std::from_chars(o.value.data(), o.value.data() + o.value.size(), v);
  OOSP_CHECK(res.ec == std::errc{}, "validated int failed to parse");
  return v;
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "1";
}

void ArgParser::print_usage(std::ostream& os) const {
  os << description_ << "\n\nusage: " << program_ << " [options]\n\noptions:\n";
  std::size_t width = 0;
  for (const Option& o : options_) width = std::max(width, o.name.size());
  for (const Option& o : options_) {
    os << "  --" << o.name << std::string(width - o.name.size() + 2, ' ') << o.help;
    if (o.kind != Kind::kFlag) os << " (default: " << o.value << ")";
    os << "\n";
  }
  os << "  --help" << std::string(width - 2, ' ') << "show this message\n";
}

}  // namespace oosp
