// String interning: maps names to dense small integer ids and back.
// Used for event type names so the hot path compares integers, never strings.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace oosp {

class Interner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalid = static_cast<Id>(-1);

  // Returns the id for `name`, interning it if new.
  Id intern(std::string_view name);

  // Returns the id for `name` or kInvalid if never interned.
  Id lookup(std::string_view name) const noexcept;

  // Name for a previously returned id. Requires a valid id.
  const std::string& name(Id id) const;

  std::size_t size() const noexcept { return names_.size(); }

 private:
  // deque: element addresses are stable across growth, so the string_view
  // keys in index_ (which alias deque elements) never dangle.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, Id> index_;
};

}  // namespace oosp
