// Recursive-descent parser for the pattern query language.
//
// Grammar (keywords case-insensitive):
//   query      := PATTERN SEQ '(' step (',' step)* ')' [WHERE or_expr] WITHIN INT
//   step       := ['!'] IDENT IDENT                  // TypeName binding
//   or_expr    := and_expr (OR and_expr)*
//   and_expr   := not_expr (AND not_expr)*
//   not_expr   := NOT not_expr | primary
//   primary    := '(' or_expr ')' | comparison
//   comparison := operand ('=='|'!='|'<'|'<='|'>'|'>=') operand
//   operand    := IDENT '.' IDENT | INT | FLOAT | STRING | TRUE | FALSE
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "query/ast.hpp"

namespace oosp {

class QueryParseError : public std::runtime_error {
 public:
  QueryParseError(std::string message, std::size_t offset);
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

// Parses a full query. Throws QueryParseError on syntax errors.
ParsedQuery parse_query(std::string_view text);

// Parses a standalone boolean expression (exposed for tests/tools).
BoolExpr parse_expression(std::string_view text);

}  // namespace oosp
