#include "query/ast.hpp"

#include <sstream>

#include "common/contracts.hpp"

namespace oosp {

std::string_view to_string(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

std::string_view to_string(AggFn fn) noexcept {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "?";
}

BoolExpr BoolExpr::make_cmp(Comparison c) {
  BoolExpr e;
  e.kind = Kind::kCmp;
  e.cmp = std::move(c);
  return e;
}

BoolExpr BoolExpr::make_and(std::vector<BoolExpr> kids) {
  OOSP_REQUIRE(kids.size() >= 2, "AND needs two operands");
  BoolExpr e;
  e.kind = Kind::kAnd;
  e.children = std::move(kids);
  return e;
}

BoolExpr BoolExpr::make_or(std::vector<BoolExpr> kids) {
  OOSP_REQUIRE(kids.size() >= 2, "OR needs two operands");
  BoolExpr e;
  e.kind = Kind::kOr;
  e.children = std::move(kids);
  return e;
}

BoolExpr BoolExpr::make_not(BoolExpr kid) {
  BoolExpr e;
  e.kind = Kind::kNot;
  e.children.push_back(std::move(kid));
  return e;
}

namespace {

void render_operand(std::ostream& os, const Operand& op) {
  if (const auto* ref = std::get_if<AttrRef>(&op)) {
    os << ref->binding << '.' << ref->attr;
  } else {
    os << std::get<Value>(op);
  }
}

void render_expr(std::ostream& os, const BoolExpr& e, bool parenthesize) {
  switch (e.kind) {
    case BoolExpr::Kind::kCmp: {
      render_operand(os, e.cmp->lhs);
      os << ' ' << to_string(e.cmp->op) << ' ';
      render_operand(os, e.cmp->rhs);
      return;
    }
    case BoolExpr::Kind::kNot:
      os << "NOT ";
      render_expr(os, e.children[0], true);
      return;
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr: {
      const char* joiner = e.kind == BoolExpr::Kind::kAnd ? " AND " : " OR ";
      if (parenthesize) os << '(';
      for (std::size_t i = 0; i < e.children.size(); ++i) {
        if (i) os << joiner;
        render_expr(os, e.children[i], true);
      }
      if (parenthesize) os << ')';
      return;
    }
  }
}

}  // namespace

std::string to_text(const BoolExpr& e) {
  std::ostringstream os;
  render_expr(os, e, false);
  return os.str();
}

std::string to_text(const ParsedQuery& q) {
  std::ostringstream os;
  if (q.agg) {
    const AggDecl& a = *q.agg;
    os << "AGG " << to_string(a.fn) << '(' << a.type_name;
    if (!a.attr.empty()) os << '.' << a.attr;
    os << ") OVER " << q.window;
    if (a.slide != q.window) os << " SLIDE " << a.slide;
    if (a.has_key) os << " BY " << a.key_attr;
    return os.str();
  }
  os << "PATTERN SEQ(";
  for (std::size_t i = 0; i < q.steps.size(); ++i) {
    if (i) os << ", ";
    if (q.steps[i].negated) os << '!';
    os << q.steps[i].type_name << ' ' << q.steps[i].binding;
  }
  os << ')';
  if (q.where) os << " WHERE " << to_text(*q.where);
  os << " WITHIN " << q.window;
  return os.str();
}

}  // namespace oosp
