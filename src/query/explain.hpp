// Human-readable explanation of a compiled query: resolved steps, local
// vs cross-step predicates, negation intervals and the detected
// partition key. What `EXPLAIN` is to a SQL engine — used by the CLI and
// by anyone debugging why a query matches (or partitions) the way it
// does.
#pragma once

#include <string>

#include "query/compiled.hpp"

namespace oosp {

std::string explain(const CompiledQuery& query, const TypeRegistry& registry);

}  // namespace oosp
