#include "query/explain.hpp"

#include <sstream>

namespace oosp {

std::string explain(const CompiledQuery& query, const TypeRegistry& registry) {
  std::ostringstream os;
  os << "query:   " << query.text() << "\n";
  os << "window:  " << query.window() << " ticks (last − first <= window)\n";
  os << "steps:\n";
  for (std::size_t i = 0; i < query.num_steps(); ++i) {
    const CompiledStep& s = query.step(i);
    os << "  [" << i << "] " << registry.name(s.type) << ' ' << s.binding;
    if (s.negated) {
      os << "  NEGATED: no match in (" << query.step(s.prev_positive).binding << ".ts, "
         << query.step(s.next_positive).binding << ".ts)";
    } else if (i == query.trigger_step()) {
      os << "  (trigger: last positive step)";
    }
    if (!s.local_predicates.empty()) {
      os << "\n      scan-time filters:";
      for (const std::size_t pi : s.local_predicates)
        os << " [" << query.predicates()[pi].text() << "]";
    }
    os << "\n";
  }
  bool any_cross = false;
  for (const CompiledPredicate& p : query.predicates())
    any_cross |= p.steps().size() > 1;
  if (any_cross) {
    os << "cross-step predicates (evaluated during construction):\n";
    for (const CompiledPredicate& p : query.predicates()) {
      if (p.steps().size() < 2) continue;
      os << "  [" << p.text() << "] over steps {";
      for (std::size_t k = 0; k < p.steps().size(); ++k)
        os << (k ? "," : "") << p.steps()[k];
      os << "}" << (p.positive_only() ? "" : "  (negation check)") << "\n";
    }
  }
  if (query.partitionable()) {
    os << "partitioning: ENABLED — equality class covers every positive step\n";
    for (std::size_t i = 0; i < query.num_steps(); ++i) {
      const std::size_t slot = query.partition_slots()[i];
      os << "  step " << i << " keyed on ";
      if (slot == CompiledStep::npos) {
        os << "(none — negated step outside the class)";
      } else {
        os << registry.schema(query.step(i).type).field(slot).name;
      }
      os << "\n";
    }
  } else {
    os << "partitioning: none (no positive-step equality class covers the "
          "whole pattern)\n";
  }
  return os.str();
}

}  // namespace oosp
