#include "query/compiled.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/contracts.hpp"
#include "query/parser.hpp"

namespace oosp {

bool CompiledPredicate::references(std::size_t step) const noexcept {
  return std::binary_search(steps_.begin(), steps_.end(), step);
}

bool CompiledPredicate::eval_node(const Node& n, std::span<const Event* const> bindings) {
  switch (n.kind) {
    case BoolExpr::Kind::kCmp: {
      auto fetch = [&](const ResolvedOperand& o) -> const Value& {
        if (o.is_literal) return o.literal;
        const Event* e = bindings[o.step];
        OOSP_ASSERT(e != nullptr);
        return e->attr(o.slot);
      };
      const int c = fetch(n.lhs).compare(fetch(n.rhs));
      switch (n.op) {
        case CmpOp::kEq: return c == 0;
        case CmpOp::kNe: return c != 0;
        case CmpOp::kLt: return c < 0;
        case CmpOp::kLe: return c <= 0;
        case CmpOp::kGt: return c > 0;
        case CmpOp::kGe: return c >= 0;
      }
      return false;
    }
    case BoolExpr::Kind::kAnd:
      for (const Node& k : n.children)
        if (!eval_node(k, bindings)) return false;
      return true;
    case BoolExpr::Kind::kOr:
      for (const Node& k : n.children)
        if (eval_node(k, bindings)) return true;
      return false;
    case BoolExpr::Kind::kNot:
      return !eval_node(n.children.front(), bindings);
  }
  return false;
}

bool CompiledPredicate::eval(std::span<const Event* const> bindings) const {
  return eval_node(root_, bindings);
}

std::span<const std::size_t> CompiledQuery::steps_for_type(TypeId t) const noexcept {
  if (t >= type_to_steps_.size()) return {};
  return type_to_steps_[t];
}

std::vector<TypeId> CompiledQuery::positive_type_chain() const {
  std::vector<TypeId> chain;
  chain.reserve(positive_.size());
  for (const std::size_t s : positive_) chain.push_back(steps_[s].type);
  return chain;
}

std::size_t CompiledQuery::uniform_partition_slot(TypeId t) const noexcept {
  if (!partitionable_) return CompiledStep::npos;
  std::size_t slot = CompiledStep::npos;
  for (const std::size_t s : steps_for_type(t)) {
    const std::size_t here = partition_slots_[s];
    if (here == CompiledStep::npos) return CompiledStep::npos;
    if (slot == CompiledStep::npos) slot = here;
    else if (slot != here) return CompiledStep::npos;
  }
  return slot;
}

namespace {

// Union-find over dense indices, used for equi-join key detection.
class UnionFind {
 public:
  std::size_t make() {
    parent_.push_back(parent_.size());
    return parent_.size() - 1;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

class Analyzer {
 public:
  Analyzer(const ParsedQuery& parsed, const TypeRegistry& registry)
      : parsed_(parsed), registry_(registry) {}

  CompiledQuery run() {
    if (parsed_.agg) {
      analyze_agg();
    } else {
      analyze_steps();
      analyze_where();
      detect_partition_key();
    }
    index_types();
    out_.window_ = parsed_.window;
    out_.text_ = to_text(parsed_);
    return std::move(out_);
  }

 private:
  [[noreturn]] static void fail(const std::string& msg) { throw QueryAnalysisError(msg); }

  void analyze_steps() {
    if (parsed_.steps.empty()) fail("pattern needs at least one step");
    for (const StepDecl& d : parsed_.steps) {
      CompiledStep s;
      s.type = registry_.lookup(d.type_name);
      if (s.type == kInvalidType) fail("unknown event type: " + d.type_name);
      if (d.binding.empty()) fail("step needs a binding name");
      if (binding_to_step_.count(d.binding))
        fail("duplicate binding name: " + d.binding);
      binding_to_step_.emplace(d.binding, out_.steps_.size());
      s.binding = d.binding;
      s.negated = d.negated;
      out_.steps_.push_back(std::move(s));
    }
    for (std::size_t i = 0; i < out_.steps_.size(); ++i)
      if (!out_.steps_[i].negated) out_.positive_.push_back(i);
    if (out_.positive_.empty()) fail("pattern needs at least one positive step");
    if (out_.steps_.front().negated)
      fail("first step must be positive (negation is interior-only)");
    if (out_.steps_.back().negated)
      fail("last step must be positive (negation is interior-only)");
    // Adjacent positive steps for each negated step.
    for (std::size_t i = 0; i < out_.steps_.size(); ++i) {
      if (!out_.steps_[i].negated) continue;
      std::size_t p = i;
      while (p > 0 && out_.steps_[--p].negated) {
      }
      std::size_t q = i;
      while (q + 1 < out_.steps_.size() && out_.steps_[++q].negated) {
      }
      OOSP_ASSERT(!out_.steps_[p].negated && !out_.steps_[q].negated);
      out_.steps_[i].prev_positive = p;
      out_.steps_[i].next_positive = q;
    }
  }

  void analyze_agg() {
    const AggDecl& a = *parsed_.agg;
    AggSpec spec;
    spec.fn = a.fn;
    spec.type = registry_.lookup(a.type_name);
    if (spec.type == kInvalidType) fail("unknown event type: " + a.type_name);
    const Schema& schema = registry_.schema(spec.type);
    if (a.fn != AggFn::kCount) {
      spec.value_slot = schema.slot(a.attr);
      if (spec.value_slot == Schema::npos)
        fail("type '" + a.type_name + "' has no attribute '" + a.attr + "'");
      spec.value_type = schema.field(spec.value_slot).type;
      if (spec.value_type != ValueType::kInt && spec.value_type != ValueType::kDouble)
        fail(std::string(to_string(a.fn)) + " needs a numeric attribute, but '" +
             a.attr + "' is " + std::string(to_string(spec.value_type)));
    }
    if (a.has_key) {
      spec.key_slot = schema.slot(a.key_attr);
      if (spec.key_slot == Schema::npos)
        fail("type '" + a.type_name + "' has no attribute '" + a.key_attr + "'");
    }
    spec.has_key = a.has_key;
    if (a.slide <= 0) fail("slide must be positive");
    if (a.slide > parsed_.window) fail("slide must not exceed the window");
    spec.slide = a.slide;
    // One positive step so routing / relevance / partitioning reuse the
    // pattern machinery; shards colocate a key's events exactly like a
    // single-step equi-join.
    CompiledStep s;
    s.type = spec.type;
    s.binding = "e";
    out_.steps_.push_back(std::move(s));
    out_.positive_ = {0};
    out_.partitionable_ = a.has_key;
    out_.partition_slots_ = {a.has_key ? spec.key_slot : CompiledStep::npos};
    out_.agg_ = spec;
  }

  ValueType operand_type(const ResolvedOperand& o) const {
    if (o.is_literal) return o.literal.type();
    return registry_.schema(out_.steps_[o.step].type).field(o.slot).type;
  }

  ResolvedOperand resolve_operand(const Operand& op) {
    ResolvedOperand r;
    if (const auto* lit = std::get_if<Value>(&op)) {
      r.is_literal = true;
      r.literal = *lit;
      return r;
    }
    const auto& ref = std::get<AttrRef>(op);
    const auto it = binding_to_step_.find(ref.binding);
    if (it == binding_to_step_.end()) fail("unknown binding: " + ref.binding);
    r.step = it->second;
    const Schema& schema = registry_.schema(out_.steps_[r.step].type);
    r.slot = schema.slot(ref.attr);
    if (r.slot == Schema::npos)
      fail("type of binding '" + ref.binding + "' has no attribute '" + ref.attr + "'");
    return r;
  }

  CompiledPredicate::Node compile_node(const BoolExpr& e, std::set<std::size_t>& steps) {
    CompiledPredicate::Node n;
    n.kind = e.kind;
    if (e.kind == BoolExpr::Kind::kCmp) {
      n.lhs = resolve_operand(e.cmp->lhs);
      n.op = e.cmp->op;
      n.rhs = resolve_operand(e.cmp->rhs);
      const ValueType lt = operand_type(n.lhs), rt = operand_type(n.rhs);
      const bool numeric = (lt == ValueType::kInt || lt == ValueType::kDouble) &&
                           (rt == ValueType::kInt || rt == ValueType::kDouble);
      if (!numeric && lt != rt)
        fail("incomparable operand types (" + std::string(to_string(lt)) + " vs " +
             std::string(to_string(rt)) + ") in: " + to_text(e));
      if (!n.lhs.is_literal) steps.insert(n.lhs.step);
      if (!n.rhs.is_literal) steps.insert(n.rhs.step);
      return n;
    }
    for (const BoolExpr& kid : e.children) n.children.push_back(compile_node(kid, steps));
    return n;
  }

  void add_conjunct(const BoolExpr& e) {
    CompiledPredicate p;
    std::set<std::size_t> steps;
    p.root_ = compile_node(e, steps);
    p.steps_.assign(steps.begin(), steps.end());
    if (p.steps_.empty())
      fail("predicate references no event attribute: " + to_text(e));
    std::size_t negated_refs = 0;
    for (std::size_t s : p.steps_)
      if (out_.steps_[s].negated) ++negated_refs;
    if (negated_refs > 1)
      fail("a predicate may reference at most one negated step: " + to_text(e));
    p.positive_only_ = negated_refs == 0;
    p.text_ = to_text(e);
    const std::size_t index = out_.predicates_.size();
    if (p.steps_.size() == 1)
      out_.steps_[p.steps_.front()].local_predicates.push_back(index);
    out_.predicates_.push_back(std::move(p));
  }

  void analyze_where() {
    if (!parsed_.where) return;
    // Split the top-level AND spine into independent conjuncts.
    std::vector<const BoolExpr*> work{&*parsed_.where};
    std::vector<const BoolExpr*> conjuncts;
    while (!work.empty()) {
      const BoolExpr* e = work.back();
      work.pop_back();
      if (e->kind == BoolExpr::Kind::kAnd) {
        for (auto it = e->children.rbegin(); it != e->children.rend(); ++it)
          work.push_back(&*it);
      } else {
        conjuncts.push_back(e);
      }
    }
    for (const BoolExpr* e : conjuncts) add_conjunct(*e);
  }

  // Detects an attribute equality class spanning every positive step: the
  // enabling condition for hash-partitioned stacks (DESIGN.md §3.3 opt ii).
  //
  // SOUNDNESS: a match binds only positive steps, so only equality edges
  // between two POSITIVE steps constrain the match — an equality chain
  // routed through a negated binding (a.k == b.k AND b.k == c.k with !B b)
  // does NOT imply a.k == c.k for a valid match (no B may exist at all).
  // The class is therefore built from positive-positive edges only;
  // negated steps may then attach to the finished class through their own
  // edges so their buffers can be routed to the same shard.
  void detect_partition_key() {
    out_.partition_slots_.assign(out_.steps_.size(), CompiledStep::npos);
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> node_of;  // (step,slot)→uf idx
    UnionFind uf;
    auto node = [&](std::size_t step, std::size_t slot) {
      const auto key = std::make_pair(step, slot);
      auto it = node_of.find(key);
      if (it != node_of.end()) return it->second;
      const std::size_t n = uf.make();
      node_of.emplace(key, n);
      return n;
    };
    // An equality edge usable for partitioning: bare `x.a == y.b` conjunct
    // with identical static types (so one hash function serves the class).
    auto eq_edge = [&](const CompiledPredicate& p)
        -> std::optional<std::pair<ResolvedOperand, ResolvedOperand>> {
      const auto& root = p.root_;
      if (root.kind != BoolExpr::Kind::kCmp || root.op != CmpOp::kEq) return std::nullopt;
      if (root.lhs.is_literal || root.rhs.is_literal) return std::nullopt;
      if (operand_type(root.lhs) != operand_type(root.rhs)) return std::nullopt;
      return std::make_pair(root.lhs, root.rhs);
    };
    for (const CompiledPredicate& p : out_.predicates_) {
      const auto edge = eq_edge(p);
      if (!edge) continue;
      if (out_.steps_[edge->first.step].negated || out_.steps_[edge->second.step].negated)
        continue;  // positive-positive edges only
      uf.unite(node(edge->first.step, edge->first.slot),
               node(edge->second.step, edge->second.slot));
    }
    // Find a class covering every positive step.
    std::map<std::size_t, std::vector<std::pair<std::size_t, std::size_t>>> classes;
    for (const auto& [key, n] : node_of) classes[uf.find(n)].push_back(key);
    for (const auto& [cls, members] : classes) {
      std::vector<std::size_t> slot_for(out_.steps_.size(), CompiledStep::npos);
      std::size_t covered = 0;
      for (const auto& [step, slot] : members) {
        if (slot_for[step] == CompiledStep::npos) {
          slot_for[step] = slot;
          ++covered;  // members are positive steps by construction
        }
      }
      if (covered != out_.positive_.size()) continue;
      // Attach negated steps that equate directly to a class member.
      for (const CompiledPredicate& p : out_.predicates_) {
        const auto edge = eq_edge(p);
        if (!edge) continue;
        const auto [lhs, rhs] = *edge;
        for (const auto& [neg, pos] :
             {std::make_pair(lhs, rhs), std::make_pair(rhs, lhs)}) {
          if (!out_.steps_[neg.step].negated || out_.steps_[pos.step].negated) continue;
          if (slot_for[neg.step] != CompiledStep::npos) continue;
          const auto it = node_of.find({pos.step, pos.slot});
          if (it != node_of.end() && uf.find(it->second) == cls)
            slot_for[neg.step] = neg.slot;
        }
      }
      out_.partition_slots_ = std::move(slot_for);
      out_.partitionable_ = true;
      return;
    }
  }

  void index_types() {
    out_.type_to_steps_.assign(registry_.size(), {});
    for (std::size_t i = 0; i < out_.steps_.size(); ++i)
      out_.type_to_steps_[out_.steps_[i].type].push_back(i);
  }

  const ParsedQuery& parsed_;
  const TypeRegistry& registry_;
  CompiledQuery out_;
  std::unordered_map<std::string, std::size_t> binding_to_step_;
};

CompiledQuery compile_query(const ParsedQuery& parsed, const TypeRegistry& registry) {
  return Analyzer(parsed, registry).run();
}

CompiledQuery compile_query(std::string_view text, const TypeRegistry& registry) {
  return compile_query(parse_query(text), registry);
}

std::shared_ptr<const CompiledQuery> compile_query_shared(std::string_view text,
                                                          const TypeRegistry& registry) {
  return std::make_shared<const CompiledQuery>(compile_query(text, registry));
}

}  // namespace oosp
