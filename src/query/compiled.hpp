// Compiled (executable) form of a pattern query, plus the analyzer that
// produces it from a parse tree and a TypeRegistry.
//
// Semantics fixed here and relied upon by every engine and the oracle:
//
//  * A match binds one event to every positive step. Timestamps across
//    positive steps are STRICTLY increasing in pattern order (equal
//    timestamps never sequence).
//  * Window: last.ts − first.ts <= window (first/last positive bindings).
//  * A negated step `!C c` between positive steps p and q invalidates a
//    candidate match iff some event of type C exists with
//    p.ts < c.ts < q.ts (strict on both sides) satisfying every WHERE
//    conjunct that references `c`. Negated steps must be interior: the
//    first and last steps of a pattern must be positive.
//  * The WHERE clause is split at top-level ANDs into conjuncts
//    ("predicates"). A predicate may reference at most one negated step.
//    Inside a conjunct arbitrary OR / NOT / comparisons are allowed.
//
// The compiled form resolves every `binding.attr` to a (step, slot) pair
// and type-checks comparisons, so engines evaluate predicates without
// any name lookups or type errors at runtime.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "event/event.hpp"
#include "query/ast.hpp"

namespace oosp {

class QueryAnalysisError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ResolvedOperand {
  bool is_literal = false;
  Value literal;         // valid when is_literal
  std::size_t step = 0;  // valid when !is_literal
  std::size_t slot = 0;
};

// One top-level conjunct of the WHERE clause, in evaluable form.
class CompiledPredicate {
 public:
  // Evaluates against a binding vector indexed by *step index* (pattern
  // order, negated steps included). Every step referenced by this
  // predicate must be non-null; other entries are ignored.
  bool eval(std::span<const Event* const> bindings) const;

  // Sorted, de-duplicated step indices referenced.
  const std::vector<std::size_t>& steps() const noexcept { return steps_; }
  bool references(std::size_t step) const noexcept;
  std::size_t min_step() const noexcept { return steps_.front(); }
  std::size_t max_step() const noexcept { return steps_.back(); }

  // True when no negated step is referenced.
  bool positive_only() const noexcept { return positive_only_; }

  const std::string& text() const noexcept { return text_; }

 private:
  friend class Analyzer;

  struct Node {
    BoolExpr::Kind kind = BoolExpr::Kind::kCmp;
    // kCmp payload:
    ResolvedOperand lhs, rhs;
    CmpOp op = CmpOp::kEq;
    std::vector<Node> children;
  };

  static bool eval_node(const Node& n, std::span<const Event* const> bindings);

  Node root_;
  std::vector<std::size_t> steps_;
  bool positive_only_ = true;
  std::string text_;
};

struct CompiledStep {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  TypeId type = kInvalidType;
  std::string binding;
  bool negated = false;

  // For negated steps: pattern indices of the adjacent positive steps.
  std::size_t prev_positive = npos;
  std::size_t next_positive = npos;

  // Indices (into CompiledQuery::predicates()) of conjuncts that
  // reference only this step — evaluable at scan time.
  std::vector<std::size_t> local_predicates;
};

// Resolved form of an AGG query. The compiled query still carries one
// positive step (the input type, binding "e") so routing, relevance and
// partitioning reuse the pattern machinery unchanged.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  TypeId type = kInvalidType;
  std::size_t value_slot = CompiledStep::npos;  // npos for count
  ValueType value_type = ValueType::kInt;
  bool has_key = false;
  std::size_t key_slot = CompiledStep::npos;
  Timestamp slide = 0;
};

class CompiledQuery {
 public:
  const std::vector<CompiledStep>& steps() const noexcept { return steps_; }
  const CompiledStep& step(std::size_t i) const { return steps_.at(i); }
  std::size_t num_steps() const noexcept { return steps_.size(); }

  // Pattern indices of positive steps, in pattern order.
  const std::vector<std::size_t>& positive_steps() const noexcept { return positive_; }
  std::size_t num_positive() const noexcept { return positive_.size(); }

  // Pattern index of the last positive step (the construction trigger).
  std::size_t trigger_step() const noexcept { return positive_.back(); }
  std::size_t first_step() const noexcept { return positive_.front(); }

  const std::vector<CompiledPredicate>& predicates() const noexcept { return predicates_; }

  Timestamp window() const noexcept { return window_; }

  // Steps (pattern indices) that accept events of type `t`; empty when
  // the type is irrelevant to this query.
  std::span<const std::size_t> steps_for_type(TypeId t) const noexcept;
  bool relevant(TypeId t) const noexcept { return !steps_for_type(t).empty(); }

  // Event types of the positive steps, in pattern order — the query's
  // SEQ chain as the shared-scan planner (runtime/planner.hpp) sees it.
  // A type may repeat when the pattern matches it at several positions.
  std::vector<TypeId> positive_type_chain() const;

  // The single equi-join slot every step accepting type `t` keys on, or
  // CompiledStep::npos when the query is not partitionable, the type is
  // irrelevant, or two steps of the type key on different attributes.
  // A shared scan keeps ONE stack per (type, key shard), so queries can
  // only share a partitioned scan when this agrees per overlapping type.
  std::size_t uniform_partition_slot(TypeId t) const noexcept;

  // Equi-join partitioning: when the WHERE clause forces one attribute of
  // every positive step into a single equality class, partition_slots()
  // returns, per pattern step, the slot of that attribute (or npos for
  // steps outside the class — possible only for negated steps).
  bool partitionable() const noexcept { return partitionable_; }
  const std::vector<std::size_t>& partition_slots() const noexcept { return partition_slots_; }

  // Aggregation queries compile to an AggSpec plus the single positive
  // step above; pattern-only machinery (shared scans, negation) must not
  // see them, which the planner enforces.
  bool is_agg() const noexcept { return agg_.has_value(); }
  const AggSpec& agg() const { return agg_.value(); }

  const std::string& text() const noexcept { return text_; }

 private:
  friend class Analyzer;

  std::vector<CompiledStep> steps_;
  std::vector<std::size_t> positive_;
  std::vector<CompiledPredicate> predicates_;
  Timestamp window_ = 0;
  std::vector<std::vector<std::size_t>> type_to_steps_;  // indexed by TypeId
  bool partitionable_ = false;
  std::vector<std::size_t> partition_slots_;
  std::optional<AggSpec> agg_;
  std::string text_;
};

// Resolves, type-checks and compiles `parsed` against `registry`.
// Throws QueryAnalysisError on any semantic violation.
CompiledQuery compile_query(const ParsedQuery& parsed, const TypeRegistry& registry);

// Convenience: parse + compile.
CompiledQuery compile_query(std::string_view text, const TypeRegistry& registry);

// Parse + compile into the shared form EngineContext / Session take.
std::shared_ptr<const CompiledQuery> compile_query_shared(std::string_view text,
                                                          const TypeRegistry& registry);

}  // namespace oosp
