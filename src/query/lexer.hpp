// Tokenizer for the pattern query language.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oosp {

enum class TokKind : std::uint8_t {
  kIdent,
  kInt,
  kFloat,
  kString,
  // keywords
  kPattern,
  kSeq,
  kWhere,
  kWithin,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kAgg,
  kOver,
  kSlide,
  kBy,
  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kDot,
  kBang,
  kEq,   // ==
  kNe,   // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

std::string_view to_string(TokKind k) noexcept;

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // raw text (unescaped content for strings)
  std::size_t offset = 0;  // byte offset in the input, for diagnostics
};

// Throws QueryParseError (see parser.hpp) on malformed input.
std::vector<Token> tokenize(std::string_view input);

}  // namespace oosp
