#include "query/lexer.hpp"

#include <cctype>

#include "query/parser.hpp"

namespace oosp {

std::string_view to_string(TokKind k) noexcept {
  switch (k) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kInt: return "integer";
    case TokKind::kFloat: return "float";
    case TokKind::kString: return "string";
    case TokKind::kPattern: return "PATTERN";
    case TokKind::kSeq: return "SEQ";
    case TokKind::kWhere: return "WHERE";
    case TokKind::kWithin: return "WITHIN";
    case TokKind::kAnd: return "AND";
    case TokKind::kOr: return "OR";
    case TokKind::kNot: return "NOT";
    case TokKind::kTrue: return "TRUE";
    case TokKind::kFalse: return "FALSE";
    case TokKind::kAgg: return "AGG";
    case TokKind::kOver: return "OVER";
    case TokKind::kSlide: return "SLIDE";
    case TokKind::kBy: return "BY";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kComma: return "','";
    case TokKind::kDot: return "'.'";
    case TokKind::kBang: return "'!'";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

TokKind keyword_kind(std::string_view upper) {
  if (upper == "PATTERN") return TokKind::kPattern;
  if (upper == "SEQ") return TokKind::kSeq;
  if (upper == "WHERE") return TokKind::kWhere;
  if (upper == "WITHIN") return TokKind::kWithin;
  if (upper == "AND") return TokKind::kAnd;
  if (upper == "OR") return TokKind::kOr;
  if (upper == "NOT") return TokKind::kNot;
  if (upper == "TRUE") return TokKind::kTrue;
  if (upper == "FALSE") return TokKind::kFalse;
  if (upper == "AGG") return TokKind::kAgg;
  if (upper == "OVER") return TokKind::kOver;
  if (upper == "SLIDE") return TokKind::kSlide;
  if (upper == "BY") return TokKind::kBy;
  return TokKind::kIdent;
}

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

std::vector<Token> tokenize(std::string_view input) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = input.size();

  auto push = [&](TokKind k, std::string text, std::size_t at) {
    out.push_back(Token{k, std::move(text), at});
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (ident_start(c)) {
      while (i < n && ident_char(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      const TokKind k = keyword_kind(upper);
      push(k, k == TokKind::kIdent ? std::move(word) : std::move(upper), start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;  // sign or first digit
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) || input[i] == '.')) {
        if (input[i] == '.') {
          // a second dot ends the number (so "1.2.3" errors in the parser)
          if (is_float) break;
          is_float = true;
        }
        ++i;
      }
      push(is_float ? TokKind::kFloat : TokKind::kInt,
           std::string(input.substr(start, i - start)), start);
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string content;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\\' && i + 1 < n) {
          content += input[i + 1];
          i += 2;
          continue;
        }
        if (input[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        content += input[i];
        ++i;
      }
      if (!closed) throw QueryParseError("unterminated string literal", start);
      push(TokKind::kString, std::move(content), start);
      continue;
    }
    auto two = [&](char second) { return i + 1 < n && input[i + 1] == second; };
    switch (c) {
      case '(': push(TokKind::kLParen, "(", start); ++i; break;
      case ')': push(TokKind::kRParen, ")", start); ++i; break;
      case ',': push(TokKind::kComma, ",", start); ++i; break;
      case '.': push(TokKind::kDot, ".", start); ++i; break;
      case '=':
        if (!two('='))
          throw QueryParseError("expected '==' (single '=' is not assignment here)", start);
        push(TokKind::kEq, "==", start);
        i += 2;
        break;
      case '!':
        if (two('=')) {
          push(TokKind::kNe, "!=", start);
          i += 2;
        } else {
          push(TokKind::kBang, "!", start);
          ++i;
        }
        break;
      case '<':
        if (two('=')) {
          push(TokKind::kLe, "<=", start);
          i += 2;
        } else {
          push(TokKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokKind::kGt, ">", start);
          ++i;
        }
        break;
      default:
        throw QueryParseError(std::string("unexpected character '") + c + "'", start);
    }
  }
  out.push_back(Token{TokKind::kEnd, "", n});
  return out;
}

}  // namespace oosp
