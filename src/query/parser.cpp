#include "query/parser.hpp"

#include <cctype>
#include <charconv>

#include "query/lexer.hpp"

namespace oosp {

QueryParseError::QueryParseError(std::string message, std::size_t offset)
    : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
      offset_(offset) {}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : toks_(tokenize(text)) {}

  ParsedQuery parse_query() {
    if (cur().kind == TokKind::kAgg) return parse_agg_query();
    ParsedQuery q;
    expect(TokKind::kPattern);
    expect(TokKind::kSeq);
    expect(TokKind::kLParen);
    q.steps.push_back(parse_step());
    while (accept(TokKind::kComma)) q.steps.push_back(parse_step());
    expect(TokKind::kRParen);
    if (accept(TokKind::kWhere)) q.where = parse_or();
    expect(TokKind::kWithin);
    q.window = parse_window();
    expect(TokKind::kEnd);
    return q;
  }

  BoolExpr parse_bare_expression() {
    BoolExpr e = parse_or();
    expect(TokKind::kEnd);
    return e;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw QueryParseError(msg + ", got " + std::string(to_string(cur().kind)) +
                              (cur().text.empty() ? "" : " '" + cur().text + "'"),
                          cur().offset);
  }

  bool accept(TokKind k) {
    if (cur().kind != k) return false;
    ++pos_;
    return true;
  }

  Token expect(TokKind k) {
    if (cur().kind != k) fail("expected " + std::string(to_string(k)));
    return toks_[pos_++];
  }

  ParsedQuery parse_agg_query() {
    ParsedQuery q;
    AggDecl a;
    expect(TokKind::kAgg);
    Token fn = expect(TokKind::kIdent);
    for (char& ch : fn.text)
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    if (fn.text == "count") {
      a.fn = AggFn::kCount;
    } else if (fn.text == "sum") {
      a.fn = AggFn::kSum;
    } else if (fn.text == "min") {
      a.fn = AggFn::kMin;
    } else if (fn.text == "max") {
      a.fn = AggFn::kMax;
    } else if (fn.text == "avg") {
      a.fn = AggFn::kAvg;
    } else {
      throw QueryParseError(
          "unknown aggregation function '" + fn.text + "' (count/sum/min/max/avg)",
          fn.offset);
    }
    expect(TokKind::kLParen);
    a.type_name = expect(TokKind::kIdent).text;
    if (accept(TokKind::kDot)) a.attr = expect(TokKind::kIdent).text;
    expect(TokKind::kRParen);
    if (a.fn == AggFn::kCount && !a.attr.empty())
      throw QueryParseError("count takes a bare event type, not an attribute", fn.offset);
    if (a.fn != AggFn::kCount && a.attr.empty())
      throw QueryParseError(
          std::string(to_string(a.fn)) + " needs an attribute: Type.attr", fn.offset);
    expect(TokKind::kOver);
    q.window = parse_window();
    a.slide = q.window;  // tumbling unless SLIDE says otherwise
    if (cur().kind == TokKind::kSlide) {
      const Token slide_tok = toks_[pos_];
      ++pos_;
      a.slide = parse_window();
      if (a.slide > q.window)
        throw QueryParseError("slide must not exceed the window", slide_tok.offset);
    }
    if (accept(TokKind::kBy)) {
      a.has_key = true;
      a.key_attr = expect(TokKind::kIdent).text;
    }
    expect(TokKind::kEnd);
    q.agg = std::move(a);
    return q;
  }

  StepDecl parse_step() {
    StepDecl s;
    s.negated = accept(TokKind::kBang) || accept(TokKind::kNot);
    s.type_name = expect(TokKind::kIdent).text;
    s.binding = expect(TokKind::kIdent).text;
    return s;
  }

  Timestamp parse_window() {
    const Token t = expect(TokKind::kInt);
    Timestamp w = 0;
    const auto [p, ec] = std::from_chars(t.text.data(), t.text.data() + t.text.size(), w);
    if (ec != std::errc{} || p != t.text.data() + t.text.size())
      throw QueryParseError("invalid window literal '" + t.text + "'", t.offset);
    if (w <= 0) throw QueryParseError("window must be positive", t.offset);
    return w;
  }

  BoolExpr parse_or() {
    std::vector<BoolExpr> kids;
    kids.push_back(parse_and());
    while (accept(TokKind::kOr)) kids.push_back(parse_and());
    if (kids.size() == 1) return std::move(kids[0]);
    return BoolExpr::make_or(std::move(kids));
  }

  BoolExpr parse_and() {
    std::vector<BoolExpr> kids;
    kids.push_back(parse_not());
    while (accept(TokKind::kAnd)) kids.push_back(parse_not());
    if (kids.size() == 1) return std::move(kids[0]);
    return BoolExpr::make_and(std::move(kids));
  }

  BoolExpr parse_not() {
    if (accept(TokKind::kNot)) return BoolExpr::make_not(parse_not());
    return parse_primary();
  }

  BoolExpr parse_primary() {
    if (accept(TokKind::kLParen)) {
      BoolExpr e = parse_or();
      expect(TokKind::kRParen);
      return e;
    }
    Comparison c;
    c.lhs = parse_operand();
    switch (cur().kind) {
      case TokKind::kEq: c.op = CmpOp::kEq; break;
      case TokKind::kNe: c.op = CmpOp::kNe; break;
      case TokKind::kLt: c.op = CmpOp::kLt; break;
      case TokKind::kLe: c.op = CmpOp::kLe; break;
      case TokKind::kGt: c.op = CmpOp::kGt; break;
      case TokKind::kGe: c.op = CmpOp::kGe; break;
      default: fail("expected comparison operator");
    }
    ++pos_;
    c.rhs = parse_operand();
    return BoolExpr::make_cmp(std::move(c));
  }

  Operand parse_operand() {
    const Token t = cur();
    switch (t.kind) {
      case TokKind::kIdent: {
        ++pos_;
        expect(TokKind::kDot);
        const Token attr = expect(TokKind::kIdent);
        return AttrRef{t.text, attr.text};
      }
      case TokKind::kInt: {
        ++pos_;
        std::int64_t v = 0;
        const auto [p, ec] = std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
        if (ec != std::errc{} || p != t.text.data() + t.text.size())
          throw QueryParseError("invalid integer literal '" + t.text + "'", t.offset);
        return Value(v);
      }
      case TokKind::kFloat: {
        ++pos_;
        std::size_t consumed = 0;
        double v = 0.0;
        try {
          v = std::stod(t.text, &consumed);
        } catch (const std::exception&) {
          throw QueryParseError("invalid float literal '" + t.text + "'", t.offset);
        }
        if (consumed != t.text.size())
          throw QueryParseError("invalid float literal '" + t.text + "'", t.offset);
        return Value(v);
      }
      case TokKind::kString: ++pos_; return Value(t.text);
      case TokKind::kTrue: ++pos_; return Value(true);
      case TokKind::kFalse: ++pos_; return Value(false);
      default: fail("expected operand");
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ParsedQuery parse_query(std::string_view text) { return Parser(text).parse_query(); }

BoolExpr parse_expression(std::string_view text) {
  return Parser(text).parse_bare_expression();
}

}  // namespace oosp
