// Parse-tree representation of pattern queries.
//
// Textual form (keywords are case-insensitive):
//
//   PATTERN SEQ(Shelf s, !Checkout c, Exit x)
//   WHERE s.item == x.item AND c.item == s.item AND s.aisle > 3
//   WITHIN 600
//
// A query declares an ordered list of steps, each binding one event of a
// named type; `!` marks a negated step (the *absence* of such an event
// strictly between its adjacent positive steps). The WHERE clause is an
// arbitrary boolean expression over `binding.attr` references and
// literals. WITHIN gives the window: every positive match element must
// have a timestamp within `window` ticks of the first element's.
//
// This header is the *unresolved* form produced by the parser; the
// analyzer (analyzer.hpp) resolves names against a TypeRegistry and emits
// the executable CompiledQuery.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "event/event.hpp"
#include "event/value.hpp"

namespace oosp {

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view to_string(CmpOp op) noexcept;

// `binding.attr` reference, unresolved.
struct AttrRef {
  std::string binding;
  std::string attr;
  bool operator==(const AttrRef&) const = default;
};

using Operand = std::variant<AttrRef, Value>;

struct BoolExpr;

struct Comparison {
  Operand lhs;
  CmpOp op = CmpOp::kEq;
  Operand rhs;
};

// Boolean expression tree. Comparison leaves; AND/OR have >= 2 children;
// NOT has exactly one.
struct BoolExpr {
  enum class Kind : std::uint8_t { kCmp, kAnd, kOr, kNot };
  Kind kind = Kind::kCmp;
  std::optional<Comparison> cmp;        // set when kind == kCmp
  std::vector<BoolExpr> children;       // set otherwise

  static BoolExpr make_cmp(Comparison c);
  static BoolExpr make_and(std::vector<BoolExpr> kids);
  static BoolExpr make_or(std::vector<BoolExpr> kids);
  static BoolExpr make_not(BoolExpr kid);
};

struct StepDecl {
  std::string type_name;
  std::string binding;
  bool negated = false;
};

// Windowed aggregation functions for the AGG query form.
enum class AggFn : std::uint8_t { kCount, kSum, kMin, kMax, kAvg };

std::string_view to_string(AggFn fn) noexcept;

// Aggregation form (alternative to PATTERN):
//
//   AGG sum(Trade.qty) OVER 600 SLIDE 60 BY symbol
//   AGG count(Click) OVER 1000
//
// `count` takes a bare type; the other functions take `Type.attr` where
// attr is a numeric field. OVER gives the window width, SLIDE the hop
// (default: tumbling, slide == window), BY an optional grouping
// attribute of the input type.
struct AggDecl {
  AggFn fn = AggFn::kCount;
  std::string type_name;
  std::string attr;       // empty for count
  Timestamp slide = 0;    // normalized by the parser: defaults to window
  bool has_key = false;
  std::string key_attr;
};

struct ParsedQuery {
  std::vector<StepDecl> steps;            // empty when agg is set
  std::optional<BoolExpr> where;
  Timestamp window = 0;                   // shared by both forms
  std::optional<AggDecl> agg;
};

// Renders the query back to (canonical) text — used in error messages,
// logs, and round-trip tests.
std::string to_text(const ParsedQuery& q);
std::string to_text(const BoolExpr& e);

}  // namespace oosp
