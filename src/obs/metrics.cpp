#include "obs/metrics.hpp"

#include <sstream>

#include "common/contracts.hpp"

namespace oosp {

std::uint64_t HistogramData::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) >= target && cum > 0)
      return Histogram::bucket_upper_bound(i);
  }
  return Histogram::bucket_upper_bound(buckets.empty() ? 0 : buckets.size() - 1);
}

MetricsRegistry::Family& MetricsRegistry::family_for(std::string_view name, Kind kind,
                                                     GaugeAgg agg,
                                                     std::string_view help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family fam;
    fam.kind = kind;
    fam.agg = agg;
    fam.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(fam)).first;
  } else {
    OOSP_REQUIRE(it->second.kind == kind,
                 "metric family re-registered with a different type: " +
                     std::string(name));
    OOSP_REQUIRE(kind != Kind::kGauge || it->second.agg == agg,
                 "gauge family re-registered with a different aggregation: " +
                     std::string(name));
    if (it->second.help.empty()) it->second.help = std::string(help);
  }
  return it->second;
}

Counter* MetricsRegistry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_for(name, Kind::kCounter, GaugeAgg::kSum, help);
  fam.counters.push_back(std::make_unique<Counter>());
  return fam.counters.back().get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, GaugeAgg agg,
                              std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_for(name, Kind::kGauge, agg, help);
  fam.gauges.push_back(std::make_unique<Gauge>());
  return fam.gauges.back().get();
}

Histogram* MetricsRegistry::histogram(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_for(name, Kind::kHistogram, GaugeAgg::kSum, help);
  fam.histograms.push_back(std::make_unique<Histogram>());
  return fam.histograms.back().get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, fam] : families_) {
    switch (fam.kind) {
      case Kind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& c : fam.counters) total += c->value();
        snap.counters.emplace(name, total);
        break;
      }
      case Kind::kGauge: {
        std::int64_t agg = 0;
        bool first = true;
        for (const auto& g : fam.gauges) {
          const std::int64_t v = g->value();
          if (fam.agg == GaugeAgg::kSum) {
            agg += v;
          } else {
            agg = first ? v : (v > agg ? v : agg);
          }
          first = false;
        }
        snap.gauges.emplace(name, agg);
        break;
      }
      case Kind::kHistogram: {
        HistogramData data;
        data.buckets.assign(Histogram::kBuckets, 0);
        for (const auto& h : fam.histograms) {
          for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
            data.buckets[i] += h->bucket(i);
          data.count += h->count();
          data.sum += h->sum();
        }
        snap.histograms.emplace(name, std::move(data));
        break;
      }
    }
  }
  return snap;
}

std::string MetricsRegistry::scrape_text() const {
  std::map<std::string, std::string> help;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, fam] : families_)
      if (!fam.help.empty()) help.emplace(name, fam.help);
  }
  return to_prometheus_text(snapshot(), help);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fam] : families_) {
    (void)name;
    for (auto& c : fam.counters) c->reset();
    for (auto& g : fam.gauges) g->reset();
    for (auto& h : fam.histograms) h->reset();
  }
}

std::size_t MetricsRegistry::family_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

std::size_t MetricsRegistry::slot_count(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end()) return 0;
  return it->second.counters.size() + it->second.gauges.size() +
         it->second.histograms.size();
}

std::string to_prometheus_text(const MetricsSnapshot& snap,
                               const std::map<std::string, std::string>& help) {
  std::ostringstream os;
  const auto header = [&](const std::string& name, const char* type) {
    const auto it = help.find(name);
    if (it != help.end()) os << "# HELP " << name << ' ' << it->second << '\n';
    os << "# TYPE " << name << ' ' << type << '\n';
  };
  for (const auto& [name, v] : snap.counters) {
    header(name, "counter");
    os << name << ' ' << v << '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    header(name, "gauge");
    os << name << ' ' << v << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    header(name, "histogram");
    std::uint64_t cum = 0;
    std::size_t top = 0;  // highest non-empty bucket, to keep the dump short
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      if (h.buckets[i] > 0) top = i;
    for (std::size_t i = 0; i <= top; ++i) {
      cum += h.buckets[i];
      os << name << "_bucket{le=\"" << Histogram::bucket_upper_bound(i) << "\"} "
         << cum << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << name << "_sum " << h.sum << '\n';
    os << name << "_count " << h.count << '\n';
  }
  return os.str();
}

}  // namespace oosp
