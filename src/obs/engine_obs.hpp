// Per-engine instrument bundle: the canonical metric families every
// engine reports into, created once per engine instance (one sharded
// slot each — see metrics.hpp).
//
// Split mirrors EngineStats ownership inside wrapper engines: ARRIVAL
// instruments (events/late/violations) belong to whichever engine owns
// admission — the K-slack wrapper, not its inner engine — while
// EMISSION/state instruments belong to the engine that actually emits
// and purges. EngineOptions::obs_arrival_side carries that split, so the
// aggregate never double-counts an event and scrape totals match
// EngineStats::operator+= over stats_snapshot().
//
// All helpers are null-safe: with metrics disabled every pointer is null
// and the hot path pays one predicted branch per call site.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace oosp {

struct EngineObs {
  // Arrival side (admission owner only).
  Counter* events = nullptr;
  Counter* late = nullptr;
  Counter* violations = nullptr;
  // Emission / state side (every engine).
  Counter* matches = nullptr;
  Counter* retractions = nullptr;
  Counter* cancels = nullptr;
  Counter* seals = nullptr;
  Counter* purge_passes = nullptr;
  Counter* purged = nullptr;
  Gauge* footprint = nullptr;
  Gauge* effective_slack = nullptr;
  Histogram* latency_stream = nullptr;
  Histogram* latency_wall_us = nullptr;
  // Reorder buffer (K-slack wrapper only).
  Counter* releases = nullptr;
  Gauge* reorder_depth = nullptr;
  // Windowed aggregation (AggEngine only).
  Counter* agg_emits = nullptr;
  Counter* agg_retracts = nullptr;
  Gauge* agg_tree_depth = nullptr;
  Gauge* agg_footprint = nullptr;
  Histogram* agg_emit_latency = nullptr;

  bool enabled() const noexcept { return matches != nullptr; }

  static EngineObs create(MetricsRegistry* reg, bool arrival_side) {
    EngineObs o;
    if (reg == nullptr) return o;
    if (arrival_side) {
      o.events = reg->counter("oosp_engine_events_total",
                              "events delivered to engine on_event");
      o.late = reg->counter("oosp_engine_late_events_total",
                            "events that arrived out of timestamp order");
      o.violations = reg->counter("oosp_engine_contract_violations_total",
                                  "events later than the effective K-slack bound");
    }
    o.matches = reg->counter("oosp_engine_matches_total", "matches emitted");
    o.retractions = reg->counter("oosp_engine_retractions_total",
                                 "emitted matches revoked (aggressive negation)");
    o.cancels = reg->counter("oosp_engine_match_cancels_total",
                             "sealed candidates killed by a buffered negative");
    o.seals = reg->counter("oosp_engine_match_seals_total",
                           "candidate matches whose negation horizon sealed");
    o.purge_passes =
        reg->counter("oosp_engine_purge_passes_total", "K-slack purge passes");
    o.purged = reg->counter("oosp_engine_purged_entries_total",
                            "instances and buffered events reclaimed by purging");
    o.footprint = reg->gauge("oosp_engine_footprint", GaugeAgg::kSum,
                             "live state now: instances + buffers + pending");
    o.effective_slack =
        reg->gauge("oosp_engine_effective_slack", GaugeAgg::kMax,
                   "effective K the engine currently trusts (max across shards)");
    o.latency_stream = reg->histogram(
        "oosp_engine_detection_latency_stream",
        "per-match detection delay in stream time (clock - match last ts)");
    o.latency_wall_us = reg->histogram(
        "oosp_engine_detection_latency_wall_us",
        "per-match wall-clock delay from candidate completion to emission");
    return o;
  }

  // Reorder-buffer instruments, registered by the K-slack wrapper on top
  // of its arrival-side bundle.
  void add_reorder_buffer(MetricsRegistry* reg) {
    if (reg == nullptr) return;
    releases = reg->counter("oosp_kslack_releases_total",
                            "events released from the reorder buffer in ts order");
    reorder_depth = reg->gauge("oosp_kslack_reorder_depth", GaugeAgg::kSum,
                               "events currently held in the reorder buffer");
  }

  // Aggregation instruments, registered by AggEngine on top of the
  // standard bundle. Emission latency is stream-time delay from window
  // close (end - 1) to the clock that sealed or speculated it.
  void add_agg(MetricsRegistry* reg) {
    if (reg == nullptr) return;
    agg_emits = reg->counter("oosp_agg_windows_emitted_total",
                             "aggregate windows delivered to the sink");
    agg_retracts = reg->counter("oosp_agg_windows_retracted_total",
                                "speculative window emissions revised by late data");
    agg_tree_depth = reg->gauge("oosp_agg_tree_depth", GaugeAgg::kMax,
                                "height of the deepest per-key aggregation tree");
    agg_footprint = reg->gauge("oosp_agg_window_footprint", GaugeAgg::kSum,
                               "buffered aggregation entries plus open windows");
    agg_emit_latency = reg->histogram(
        "oosp_agg_emission_latency_stream",
        "per-window emission delay in stream time (clock - (window end - 1))");
  }

  static void inc(Counter* c, std::uint64_t n = 1) noexcept {
    if (c != nullptr) c->inc(n);
  }
  static void set(Gauge* g, std::int64_t v) noexcept {
    if (g != nullptr) g->set(v);
  }
  static void observe(Histogram* h, std::int64_t v) noexcept {
    if (h != nullptr) h->observe_signed(v);
  }
};

// Shared-scan (MQO) instruments, owned by the runner that materialized
// the execution plan: how many scan groups the plan built (summed across
// shards — every shard runs the same plan) and how many events were
// inserted exactly once into a group's shared stacks, each such
// insertion standing in for one insertion per member engine.
struct MqoObs {
  Gauge* groups = nullptr;
  Counter* shared_insertions = nullptr;

  static MqoObs create(MetricsRegistry* reg) {
    MqoObs o;
    if (reg == nullptr) return o;
    o.groups = reg->gauge("oosp_mqo_groups", GaugeAgg::kSum,
                          "shared-scan groups in the active execution plan");
    o.shared_insertions = reg->counter(
        "oosp_mqo_shared_insertions_total",
        "events inserted once into a shared scan group's stacks");
    return o;
  }
};

}  // namespace oosp
