// Trace hooks: qualitative observability — reconstruct a match's
// lifecycle event by event.
//
// Engines fire span events at the decision points of a match's life:
//
//   kStart    an event opened a new partial match (first positive step)
//   kStep     an event extended / spliced into partial-match state
//   kSeal     a candidate's negation horizon sealed — its fate is final
//   kEmit     a match was delivered to the sink
//   kCancel   a sealed candidate was killed by a buffered negative
//   kRetract  an emitted match was revoked (aggressive negation only)
//   kPurge    a K-slack purge pass ran (ts = the purge horizon)
//
// The hook is a bare function pointer + context — one predicted branch
// when unset, no std::function allocation, no virtual dispatch — cheap
// enough to leave compiled into release builds. Pointers inside a
// TraceSpan are valid ONLY for the duration of the callback; copy what
// you need. Hooks run on the thread driving the engine (a shard worker
// under the sharded runtime), so a shared recorder must synchronize.
//
// A hook that THROWS aborts the engine mid-event; under the sharded
// runtime the worker records the exception and the Session surfaces it
// (see runtime/sharded.hpp) — the fault-injection tests use exactly this
// to kill workers deterministically.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "engine/core/match.hpp"
#include "event/event.hpp"

namespace oosp {

enum class TraceKind : std::uint8_t {
  kStart,
  kStep,
  kSeal,
  kEmit,
  kCancel,
  kRetract,
  kPurge,
};

inline std::string_view to_string(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kStart: return "start";
    case TraceKind::kStep: return "step";
    case TraceKind::kSeal: return "seal";
    case TraceKind::kEmit: return "emit";
    case TraceKind::kCancel: return "cancel";
    case TraceKind::kRetract: return "retract";
    case TraceKind::kPurge: return "purge";
  }
  return "?";
}

struct TraceSpan {
  TraceKind kind;
  Timestamp ts;        // subject timestamp: event ts, match last_ts, purge horizon
  Timestamp clock;     // engine stream clock when the span fired
  const Match* match;  // match-level spans; null otherwise; valid during the call
  const Event* event;  // event-level spans; null otherwise; valid during the call
};

struct TraceHook {
  using Fn = void (*)(void* ctx, const TraceSpan& span);
  Fn fn = nullptr;
  void* ctx = nullptr;

  explicit operator bool() const noexcept { return fn != nullptr; }
  void operator()(const TraceSpan& span) const { fn(ctx, span); }
};

// Records every span (identity copied out, pointers not retained), in
// firing order. Thread-safe so one recorder can serve a sharded run;
// per-engine ordering is preserved, cross-shard interleaving is not
// meaningful.
class TraceRecorder {
 public:
  struct Entry {
    TraceKind kind;
    Timestamp ts;
    Timestamp clock;
    // Event-level spans: the event's id. Match-level spans: the id of the
    // match's last bound event. kNone when neither applies (kPurge).
    static constexpr std::uint64_t kNone = ~std::uint64_t{0};
    std::uint64_t subject_id = kNone;
  };

  TraceHook hook() noexcept { return TraceHook{&TraceRecorder::thunk, this}; }

  std::vector<Entry> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }
  std::vector<TraceKind> kinds() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceKind> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.kind);
    return out;
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

 private:
  static void thunk(void* self, const TraceSpan& span) {
    static_cast<TraceRecorder*>(self)->record(span);
  }
  void record(const TraceSpan& span) {
    Entry e{span.kind, span.ts, span.clock, Entry::kNone};
    if (span.event != nullptr) {
      e.subject_id = span.event->id;
    } else if (span.match != nullptr && !span.match->events.empty()) {
      e.subject_id = span.match->events.back().id;
    }
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(e);
  }

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace oosp
