// Metrics registry: the library's quantitative observability layer.
//
// The paper's claims are about CPU and memory cost; this registry is how
// the runtime continuously exposes what it is spending. Three instrument
// kinds, all lock-free on the hot path:
//
//   Counter    — monotone u64 (events, matches, purge passes, retry spins).
//   Gauge      — signed level (queue depth, effective K, footprint).
//   Histogram  — log2-bucketed value distribution (detection latency in
//                stream time and wall time). Bucket i>0 holds values in
//                [2^(i-1), 2^i - 1]; bucket 0 holds exactly 0. 65 buckets
//                cover the full u64 range, so observe() never clips.
//
// ## Sharded slots
//
// Every call to counter()/gauge()/histogram() registers a NEW slot under
// the given family name and returns a stable pointer to it. Each shard's
// engine therefore gets its own cache-line-padded slot and updates it
// with a single relaxed atomic op — no cross-thread contention, no locks,
// no CAS on the hot path. Aggregation across slots happens only on
// scrape: counters and histogram buckets sum; gauges sum or max per the
// family's declared GaugeAgg (sum for depths/footprints, max for tuning
// levels like the effective K, where "the most conservative shard" is
// the honest aggregate — mirroring EngineStats::operator+=).
//
// Registration is cold-path (mutex) and must finish before the slots are
// hammered from other threads — which the runtime guarantees by building
// every engine before starting shard workers. snapshot()/scrape_text()
// may run concurrently with hot-path updates from any thread: slots are
// atomics, so a scrape sees a slightly stale but tear-free view.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace oosp {

namespace obsdetail {
inline constexpr std::size_t kCacheLine = 64;
}

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  alignas(obsdetail::kCacheLine) std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  alignas(obsdetail::kCacheLine) std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  // Bucket 0: value == 0. Bucket i in [1, 64]: 2^(i-1) <= value < 2^i.
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucket_index(std::uint64_t v) noexcept {
    return v == 0 ? 0 : static_cast<std::size_t>(64 - __builtin_clzll(v));
  }
  // Inclusive upper bound of bucket i (2^i − 1), saturating at u64 max.
  static std::uint64_t bucket_upper_bound(std::size_t i) noexcept {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  // Convenience for signed measurements (negative clamps to 0).
  void observe_signed(std::int64_t v) noexcept {
    observe(v < 0 ? 0 : static_cast<std::uint64_t>(v));
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  alignas(obsdetail::kCacheLine) std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// How a gauge family combines its per-shard slots on scrape.
enum class GaugeAgg : std::uint8_t {
  kSum,  // additive levels: queue depth, buffered events, footprint
  kMax,  // tuning levels: effective K, watermark lag — worst shard wins
};

// Aggregated view of one histogram family at scrape time.
struct HistogramData {
  std::vector<std::uint64_t> buckets;  // kBuckets entries, non-cumulative
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  // Upper bound of the bucket containing the q-quantile (q in [0,1]);
  // 0 when empty. Log2 buckets make this exact to within a factor of 2.
  std::uint64_t quantile(double q) const noexcept;
};

// Point-in-time aggregate of every family. Scraping does NOT reset the
// underlying slots (Prometheus-style cumulative semantics); call
// MetricsRegistry::reset() explicitly for delta-oriented harnesses.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  std::int64_t gauge(const std::string& name) const {
    const auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
  const HistogramData* histogram(const std::string& name) const {
    const auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }
};

// Prometheus text exposition (one # HELP/# TYPE header per family;
// histogram rendered as cumulative _bucket{le=...}/_sum/_count).
std::string to_prometheus_text(const MetricsSnapshot& snap,
                               const std::map<std::string, std::string>& help = {});

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers a new slot under `name` and returns it (stable pointer,
  // owned by the registry). Re-registering a name with a different
  // instrument type (or gauge aggregation) throws std::invalid_argument.
  Counter* counter(std::string_view name, std::string_view help = {});
  Gauge* gauge(std::string_view name, GaugeAgg agg = GaugeAgg::kSum,
               std::string_view help = {});
  Histogram* histogram(std::string_view name, std::string_view help = {});

  // Aggregates every family across its slots. Safe concurrently with
  // hot-path updates; does not reset anything.
  MetricsSnapshot snapshot() const;
  // snapshot() rendered as Prometheus text, with HELP strings.
  std::string scrape_text() const;

  // Zeroes every slot (benchmark harness support). Not atomic across
  // slots; do not race with a scrape you intend to trust.
  void reset();

  std::size_t family_count() const;
  // Number of registered slots under `name` (0 when absent).
  std::size_t slot_count(std::string_view name) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind = Kind::kCounter;
    GaugeAgg agg = GaugeAgg::kSum;
    std::string help;
    std::vector<std::unique_ptr<Counter>> counters;
    std::vector<std::unique_ptr<Gauge>> gauges;
    std::vector<std::unique_ptr<Histogram>> histograms;
  };

  Family& family_for(std::string_view name, Kind kind, GaugeAgg agg,
                     std::string_view help);

  mutable std::mutex mu_;  // guards families_ layout; never held on hot path
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace oosp
